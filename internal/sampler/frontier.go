package sampler

import (
	"fmt"

	"gsgcn/internal/graph"
	"gsgcn/internal/rng"
)

// Frontier configures the frontier sampling algorithm (Algorithm 2).
// The sampler maintains a frontier set of M vertices; at each step it
// pops a vertex with probability proportional to its degree, replaces
// it with a uniformly random neighbor, and adds the popped vertex to
// the sample, until N vertices (counting the initial frontier) have
// been emitted.
type Frontier struct {
	G *graph.CSR
	// M is the frontier size; the paper reports m = 1000 as a good
	// empirical value (Section IV-A).
	M int
	// N is the vertex budget n of the sampled subgraph.
	N int
	// Eta is the Dashboard enlargement factor η > 1 (Section IV-B).
	// Zero selects the default 2.
	Eta float64
	// DegCap, when positive, caps the number of Dashboard entries a
	// vertex receives regardless of its true degree. The paper uses
	// 30 for the highly skewed Amazon graph to stop hub vertices from
	// dominating every subgraph (Section VI-C2).
	DegCap int
	// Lanes is the intra-sampler parallelism width p_intra (the AVX
	// lane count on the paper's platform, at most 8 with AVX2).
	// It affects only the lane-decomposition statistics used to
	// evaluate Fig. 4B; the sampled distribution is identical.
	Lanes int
}

const invalid = int32(-1)

// Stats records the operation counts of one sampling run; the Fig. 4B
// harness uses them to derive the lane-parallel (vectorized) speedup,
// and tests use them to validate Theorem 1's cost model.
type Stats struct {
	Pops        int   // number of frontier pops (n - m)
	Probes      int   // random probes into the Dashboard, incl. rejected
	Cleanups    int   // Dashboard compactions
	Written     int64 // Dashboard entries written (init + appends + cleanup moves)
	Invalidated int64 // Dashboard entries invalidated by pops
	// BlockLens[L] counts block operations (invalidate or append) of
	// length L; Σ ceil(L/p) over this histogram is the lane-parallel
	// memory cost at width p.
	BlockLens map[int]int64
}

// LaneRounds returns Σ_ops ceil(L/p): the number of lane-parallel
// memory rounds needed at lane width p. LaneRounds(1) equals the
// total scalar entry operations.
func (s *Stats) LaneRounds(p int) int64 {
	if p < 1 {
		p = 1
	}
	var rounds int64
	for l, c := range s.BlockLens {
		rounds += int64((l+p-1)/p) * c
	}
	return rounds
}

// LaneSpeedup returns the simulated speedup of executing all block
// memory operations with p lanes instead of 1 (the Fig. 4B "gain by
// AVX" metric). Probing work is unaffected by lanes: one probe per
// round regardless, so it is excluded here and accounted separately
// by the harness.
func (s *Stats) LaneSpeedup(p int) float64 {
	r := s.LaneRounds(p)
	if r == 0 {
		return 1
	}
	return float64(s.LaneRounds(1)) / float64(r)
}

// entries returns the number of Dashboard entries vertex v occupies:
// its degree, clamped to [1, DegCap]. Degree-0 vertices get one entry
// so they remain poppable (the paper leaves this case unspecified).
func (f *Frontier) entries(v int32) int {
	d := f.G.Degree(v)
	if d < 1 {
		d = 1
	}
	if f.DegCap > 0 && d > f.DegCap {
		d = f.DegCap
	}
	return d
}

// Name implements VertexSampler.
func (f *Frontier) Name() string { return "frontier-dashboard" }

// SampleVertices implements VertexSampler using the Dashboard.
func (f *Frontier) SampleVertices(r *rng.RNG) []int32 {
	vs, _ := f.SampleVerticesStats(r)
	return vs
}

// dashboard is the paper's DB/IA pair in structure-of-arrays form.
// Per DB entry: vertex id (slot 1), offset within its block (slot 2;
// the block head instead stores the block length), and the index of
// the owning IA record (slot 3). IA records the block start and a
// liveness flag per vertex ever added (current or historical frontier
// vertex), enabling cleanup without scanning dead space.
type dashboard struct {
	vertex []int32
	offset []int32
	iaIdx  []int32

	iaStart []int32
	iaLive  []bool
	iaVert  []int32

	used int // first free DB slot
	live int // number of live IA records (current frontier size)
}

func newDashboard(capacity int) *dashboard {
	db := &dashboard{
		vertex: make([]int32, capacity),
		offset: make([]int32, capacity),
		iaIdx:  make([]int32, capacity),
	}
	for i := range db.vertex {
		db.vertex[i] = invalid
	}
	return db
}

// appendBlock writes a block of n entries for vertex v and registers
// it in IA. The caller guarantees capacity.
func (db *dashboard) appendBlock(v int32, n int) {
	start := db.used
	ia := int32(len(db.iaStart))
	db.iaStart = append(db.iaStart, int32(start))
	db.iaLive = append(db.iaLive, true)
	db.iaVert = append(db.iaVert, v)
	for k := 0; k < n; k++ {
		db.vertex[start+k] = v
		if k == 0 {
			db.offset[start+k] = int32(-n) // block head stores -length
		} else {
			db.offset[start+k] = int32(k)
		}
		db.iaIdx[start+k] = ia
	}
	db.used += n
	db.live++
}

// invalidate kills the block containing entry idx and returns its
// vertex and length.
func (db *dashboard) invalidate(idx int) (v int32, blockLen int) {
	off := db.offset[idx]
	start := idx
	if off > 0 {
		start = idx - int(off)
	}
	blockLen = int(-db.offset[start])
	v = db.vertex[start]
	for k := 0; k < blockLen; k++ {
		db.vertex[start+k] = invalid
	}
	db.iaLive[db.iaIdx[start]] = false
	db.live--
	return v, blockLen
}

// cleanup compacts live blocks to the front of the DB and rebuilds IA
// (Algorithm 4, PARDO_CLEANUP). It returns the number of entries
// moved.
func (db *dashboard) cleanup() int64 {
	newStart := make([]int32, 0, db.live)
	newVert := make([]int32, 0, db.live)
	w := 0
	var moved int64
	for ia, liveFlag := range db.iaLive {
		if !liveFlag {
			continue
		}
		start := int(db.iaStart[ia])
		blockLen := int(-db.offset[start])
		newIA := int32(len(newStart))
		newStart = append(newStart, int32(w))
		newVert = append(newVert, db.iaVert[ia])
		// Move the block; regions never overlap forward since w <= start.
		for k := 0; k < blockLen; k++ {
			db.vertex[w+k] = db.vertex[start+k]
			db.offset[w+k] = db.offset[start+k]
			db.iaIdx[w+k] = newIA
		}
		w += blockLen
		moved += int64(blockLen)
	}
	for i := w; i < db.used; i++ {
		db.vertex[i] = invalid
	}
	db.used = w
	newLive := make([]bool, len(newStart))
	for i := range newLive {
		newLive[i] = true
	}
	db.iaStart = newStart
	db.iaLive = newLive
	db.iaVert = newVert
	return moved
}

// SampleVerticesStats runs the Dashboard-based frontier sampler
// (Algorithm 3) and returns the sampled vertex multiset plus
// operation statistics.
func (f *Frontier) SampleVerticesStats(r *rng.RNG) ([]int32, *Stats) {
	g := f.G
	if g.NumVertices() == 0 {
		return nil, &Stats{BlockLens: map[int]int64{}}
	}
	m := f.M
	if m > g.NumVertices() {
		m = g.NumVertices()
	}
	if m < 1 {
		m = 1
	}
	n := f.N
	if n < m {
		n = m
	}
	eta := f.Eta
	if eta <= 1 {
		eta = 2
	}

	stats := &Stats{BlockLens: make(map[int]int64)}

	// Capacity η·m·d̄ where d̄ is the (capped) average degree estimate
	// (Algorithm 3 lines 1-2). Grown on demand if a burst of hubs
	// lands in the frontier.
	dbar := g.AvgDegree()
	if f.DegCap > 0 && dbar > float64(f.DegCap) {
		dbar = float64(f.DegCap)
	}
	if dbar < 1 {
		dbar = 1
	}
	capacity := int(eta * float64(m) * dbar)
	db := newDashboard(capacity)

	// Initial frontier: m distinct vertices uniformly at random.
	vsub := make([]int32, 0, n)
	for _, v := range r.Sample(g.NumVertices(), m) {
		vv := int32(v)
		e := f.entries(vv)
		if db.used+e > len(db.vertex) {
			db = growDashboard(db, db.used+e)
		}
		db.appendBlock(vv, e)
		stats.Written += int64(e)
		stats.BlockLens[e]++
		vsub = append(vsub, vv)
	}

	for len(vsub) < n {
		// Pop: rejection-probe the used prefix of the DB; entry
		// counts are proportional to (capped) degree, so the hit
		// distribution matches Algorithm 2 line 4.
		var idx int
		for {
			stats.Probes++
			idx = r.Intn(db.used)
			if db.vertex[idx] != invalid {
				break
			}
		}
		vpop, blockLen := db.invalidate(idx)
		stats.Pops++
		stats.Invalidated += int64(blockLen)
		stats.BlockLens[blockLen]++
		vsub = append(vsub, vpop)

		// Replace with a uniformly random neighbor (Algorithm 2 line
		// 5); isolated vertices fall back to a uniform vertex so the
		// frontier never shrinks.
		var vnew int32
		if d := g.Degree(vpop); d > 0 {
			vnew = g.Neighbor(vpop, r.Intn(d))
		} else {
			vnew = int32(r.Intn(g.NumVertices()))
		}
		e := f.entries(vnew)
		if db.used+e > len(db.vertex) {
			// Dashboard full (Algorithm 3 line 20): compact.
			moved := db.cleanup()
			stats.Cleanups++
			stats.Written += moved
			if db.used+e > len(db.vertex) {
				db = growDashboard(db, db.used+e)
			}
		}
		db.appendBlock(vnew, e)
		stats.Written += int64(e)
		stats.BlockLens[e]++
	}
	return vsub, stats
}

// growDashboard doubles capacity (at least to need), preserving
// content. This is a safety valve beyond the paper's fixed η·m·d̄
// sizing, needed when hubs exceed the average-degree estimate.
func growDashboard(db *dashboard, need int) *dashboard {
	newCap := 2 * len(db.vertex)
	if newCap < need {
		newCap = need * 2
	}
	nd := newDashboard(newCap)
	copy(nd.vertex, db.vertex[:db.used])
	copy(nd.offset, db.offset[:db.used])
	copy(nd.iaIdx, db.iaIdx[:db.used])
	nd.iaStart = db.iaStart
	nd.iaLive = db.iaLive
	nd.iaVert = db.iaVert
	nd.used = db.used
	nd.live = db.live
	return nd
}

// NaiveFrontier is the straightforward O(m) -per-pop implementation
// of Algorithm 2 used as the correctness and performance baseline
// ("a straightforward implementation requires O(m·n) work",
// Section IV-A). It maintains the frontier as a plain slice and
// recomputes the cumulative degree distribution on every pop.
type NaiveFrontier struct {
	G      *graph.CSR
	M, N   int
	DegCap int
}

// Name implements VertexSampler.
func (f *NaiveFrontier) Name() string { return "frontier-naive" }

// SampleVertices implements VertexSampler.
func (f *NaiveFrontier) SampleVertices(r *rng.RNG) []int32 {
	g := f.G
	if g.NumVertices() == 0 {
		return nil
	}
	m := f.M
	if m > g.NumVertices() {
		m = g.NumVertices()
	}
	if m < 1 {
		m = 1
	}
	n := f.N
	if n < m {
		n = m
	}
	weight := func(v int32) float64 {
		d := g.Degree(v)
		if d < 1 {
			d = 1
		}
		if f.DegCap > 0 && d > f.DegCap {
			d = f.DegCap
		}
		return float64(d)
	}

	fs := make([]int32, 0, m)
	for _, v := range r.Sample(g.NumVertices(), m) {
		fs = append(fs, int32(v))
	}
	vsub := make([]int32, 0, n)
	vsub = append(vsub, fs...)
	for len(vsub) < n {
		total := 0.0
		for _, v := range fs {
			total += weight(v)
		}
		x := r.Float64() * total
		sel := 0
		for i, v := range fs {
			x -= weight(v)
			if x < 0 {
				sel = i
				break
			}
		}
		vpop := fs[sel]
		vsub = append(vsub, vpop)
		var vnew int32
		if d := g.Degree(vpop); d > 0 {
			vnew = g.Neighbor(vpop, r.Intn(d))
		} else {
			vnew = int32(r.Intn(g.NumVertices()))
		}
		fs[sel] = vnew
	}
	return vsub
}

// TheoreticalSpeedupBound returns the Theorem 1 guarantee: for a
// given epsilon, the sampler scales at least p/(1+eps) for all
// p <= eps*d*(4 + 3/(eta-1)) - eta.
func TheoreticalSpeedupBound(eps, d, eta float64) (maxP float64) {
	if eta <= 1 {
		panic(fmt.Sprintf("sampler: eta must exceed 1, got %v", eta))
	}
	return eps*d*(4+3/(eta-1)) - eta
}
