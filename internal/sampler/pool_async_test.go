package sampler

// Determinism and race-safety suite for the asynchronous prefetching
// Pool (ISSUE 1). Run with -race: the concurrency tests are written to
// put the prefetcher's dispatch, delivery ordering and credit
// accounting under contention.

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"gsgcn/internal/graph"
	"gsgcn/internal/perf"
)

// poolSamplers returns the table of (name, sampler) pairs the
// determinism contract is verified against.
func poolSamplers(g *graph.CSR) []struct {
	name string
	s    VertexSampler
} {
	return []struct {
		name string
		s    VertexSampler
	}{
		{"frontier", &Frontier{G: g, M: 30, N: 150, Eta: 2}},
		{"node2vec", &Node2VecWalk{G: g, Walkers: 15, Depth: 9, P: 1, Q: 0.5}},
	}
}

// drawSequence collects the Orig vertex lists of n consecutive Next
// calls from a fresh pool.
func drawSequence(g *graph.CSR, s VertexSampler, pinter, workers, prefetch int, seed uint64, n int) [][]int32 {
	p := NewPool(g, s, pinter, seed)
	p.Workers = workers
	p.Prefetch = prefetch
	out := make([][]int32, n)
	for i := range out {
		out[i] = p.Next().Orig
	}
	return out
}

func sequencesEqual(a, b [][]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// subgraphKey flattens a vertex list into a comparable multiset key.
func subgraphKey(orig []int32) string {
	return fmt.Sprint(orig)
}

// TestPoolDeterminismAcrossWorkersAndDepth checks the pipeline's core
// contract: the subgraph *sequence* delivered to a single consumer is
// identical for every Workers and Prefetch setting, for each sampler
// family. (Sequence equality implies multiset equality; both are what
// the trainer's loss-trace determinism rests on.)
func TestPoolDeterminismAcrossWorkersAndDepth(t *testing.T) {
	g := testGraph(t)
	const pinter, seed, draws = 4, 7, 12
	for _, tc := range poolSamplers(g) {
		t.Run(tc.name, func(t *testing.T) {
			ref := drawSequence(g, tc.s, pinter, 1, 1, seed, draws)
			for _, workers := range []int{2, 8} {
				for _, prefetch := range []int{0, 1, 4} {
					got := drawSequence(g, tc.s, pinter, workers, prefetch, seed, draws)
					if !sequencesEqual(ref, got) {
						t.Fatalf("workers=%d prefetch=%d: subgraph sequence differs from workers=1", workers, prefetch)
					}
				}
			}
		})
	}
}

// TestPoolConcurrentNextMultiset lets 8 goroutines consume from one
// pool concurrently. Which goroutine receives which subgraph is
// scheduling-dependent, but the union of everything received must be
// exactly the multiset a serial consumer sees.
func TestPoolConcurrentNextMultiset(t *testing.T) {
	g := testGraph(t)
	const pinter, seed, perG, goroutines = 4, 11, 6, 8
	for _, tc := range poolSamplers(g) {
		t.Run(tc.name, func(t *testing.T) {
			total := perG * goroutines
			serial := drawSequence(g, tc.s, pinter, 4, 0, seed, total)
			want := map[string]int{}
			for _, orig := range serial {
				want[subgraphKey(orig)]++
			}

			p := NewPool(g, tc.s, pinter, seed)
			p.Workers = 4
			var mu sync.Mutex
			got := map[string]int{}
			var wg sync.WaitGroup
			for i := 0; i < goroutines; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for j := 0; j < perG; j++ {
						sub := p.Next()
						mu.Lock()
						got[subgraphKey(sub.Orig)]++
						mu.Unlock()
					}
				}()
			}
			wg.Wait()

			if len(got) != len(want) {
				t.Fatalf("concurrent consumers saw %d distinct subgraphs, serial saw %d", len(got), len(want))
			}
			keys := make([]string, 0, len(want))
			for k := range want {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if got[k] != want[k] {
					t.Fatalf("subgraph multiplicity mismatch: got %d, want %d", got[k], want[k])
				}
			}
		})
	}
}

// TestPoolSimulateRefillInterleaved interleaves SimulateRefill with an
// active pipeline; wave numbering must stay disjoint (no subgraph
// sequence disturbance) and delivery must not wedge.
func TestPoolSimulateRefillInterleaved(t *testing.T) {
	g := testGraph(t)
	fr := &Frontier{G: g, M: 30, N: 150, Eta: 2}
	p := NewPool(g, fr, 4, 3)
	p.Next()
	res := p.SimulateRefill(perf.SimConfig{})
	if res.Shards != 4 {
		t.Fatalf("shards = %d, want 4", res.Shards)
	}
	for i := 0; i < 2*p.PInter; i++ {
		if p.Next() == nil {
			t.Fatal("Next wedged after interleaved SimulateRefill")
		}
	}
}
