// Package sampler implements the graph-sampling subsystem of the
// paper: the frontier sampling algorithm (Ribeiro & Towsley, IMC'10;
// the paper's Algorithm 2), its Dashboard-based fast implementation
// with incremental degree-distribution updates (Algorithms 3-4,
// Theorem 1), the training scheduler's subgraph pool exploiting
// inter-subgraph parallelism (Algorithm 5), and — as the paper's
// stated future-work extension — a family of alternative graph
// samplers (random node, random edge, random walk, forest fire).
//
// All samplers consume an explicit *rng.RNG so that sampling is
// reproducible and goroutine-safe by construction (one RNG per
// sampler instance, never shared).
package sampler

import (
	"gsgcn/internal/graph"
	"gsgcn/internal/rng"
)

// VertexSampler produces a multiset of training-graph vertices; the
// induced subgraph over those vertices is the minibatch graph G_sub of
// Algorithm 1. Implementations must be safe for concurrent use by
// distinct goroutines *as long as* each call gets its own RNG.
type VertexSampler interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// SampleVertices returns the sampled vertex multiset (duplicates
	// allowed; Induce deduplicates).
	SampleVertices(r *rng.RNG) []int32
}

// SampleSubgraph draws one induced subgraph from g using s.
func SampleSubgraph(g *graph.CSR, s VertexSampler, r *rng.RNG) *graph.Subgraph {
	return g.Induce(s.SampleVertices(r))
}

// RandomNode samples Budget vertices uniformly without replacement.
type RandomNode struct {
	G      *graph.CSR
	Budget int
}

// Name implements VertexSampler.
func (s *RandomNode) Name() string { return "random-node" }

// SampleVertices implements VertexSampler.
func (s *RandomNode) SampleVertices(r *rng.RNG) []int32 {
	idx := r.Sample(s.G.NumVertices(), min(s.Budget, s.G.NumVertices()))
	out := make([]int32, len(idx))
	for i, v := range idx {
		out[i] = int32(v)
	}
	return out
}

// RandomEdge samples edges uniformly and keeps both endpoints until
// the vertex budget is met. Endpoint degrees bias coverage toward
// hubs, matching the classical random-edge sampler.
type RandomEdge struct {
	G      *graph.CSR
	Budget int
}

// Name implements VertexSampler.
func (s *RandomEdge) Name() string { return "random-edge" }

// SampleVertices implements VertexSampler.
func (s *RandomEdge) SampleVertices(r *rng.RNG) []int32 {
	g := s.G
	arcs := int(g.NumDirectedEdges())
	out := make([]int32, 0, s.Budget)
	if arcs == 0 {
		return (&RandomNode{G: g, Budget: s.Budget}).SampleVertices(r)
	}
	for len(out) < s.Budget {
		// Uniform arc = uniform undirected edge (each edge has two arcs).
		a := r.Intn(arcs)
		u := vertexOfArc(g, a)
		v := g.ColIdx[a]
		out = append(out, u, v)
	}
	return out[:s.Budget]
}

// vertexOfArc returns the source vertex owning arc index a via binary
// search over RowPtr.
func vertexOfArc(g *graph.CSR, a int) int32 {
	lo, hi := 0, g.N
	for lo < hi {
		mid := (lo + hi) / 2
		if g.RowPtr[mid+1] <= int64(a) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int32(lo)
}

// RandomWalk runs Walkers independent random walks of length Depth
// from uniform random roots and returns every visited vertex.
type RandomWalk struct {
	G       *graph.CSR
	Walkers int
	Depth   int
}

// Name implements VertexSampler.
func (s *RandomWalk) Name() string { return "random-walk" }

// SampleVertices implements VertexSampler.
func (s *RandomWalk) SampleVertices(r *rng.RNG) []int32 {
	g := s.G
	out := make([]int32, 0, s.Walkers*(s.Depth+1))
	for w := 0; w < s.Walkers; w++ {
		v := int32(r.Intn(g.N))
		out = append(out, v)
		for d := 0; d < s.Depth; d++ {
			deg := g.Degree(v)
			if deg == 0 {
				break
			}
			v = g.Neighbor(v, r.Intn(deg))
			out = append(out, v)
		}
	}
	return out
}

// ForestFire performs a BFS-like burn from random roots, following
// each edge with probability BurnProb, until Budget vertices burn.
type ForestFire struct {
	G        *graph.CSR
	Budget   int
	BurnProb float64
}

// Name implements VertexSampler.
func (s *ForestFire) Name() string { return "forest-fire" }

// SampleVertices implements VertexSampler.
func (s *ForestFire) SampleVertices(r *rng.RNG) []int32 {
	g := s.G
	p := s.BurnProb
	if p <= 0 || p >= 1 {
		p = 0.4
	}
	burned := make(map[int32]struct{}, s.Budget)
	out := make([]int32, 0, s.Budget)
	var queue []int32
	for len(out) < s.Budget {
		if len(queue) == 0 {
			root := int32(r.Intn(g.N))
			if _, ok := burned[root]; ok {
				// Re-roll a handful of times; accept duplicates on
				// dense burns rather than looping forever.
				for t := 0; t < 8; t++ {
					root = int32(r.Intn(g.N))
					if _, ok := burned[root]; !ok {
						break
					}
				}
			}
			if _, ok := burned[root]; !ok {
				burned[root] = struct{}{}
				out = append(out, root)
			}
			queue = append(queue, root)
			continue
		}
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if len(out) >= s.Budget {
				break
			}
			if _, ok := burned[w]; ok {
				continue
			}
			if r.Float64() < p {
				burned[w] = struct{}{}
				out = append(out, w)
				queue = append(queue, w)
			}
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
