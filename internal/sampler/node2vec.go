package sampler

import (
	"gsgcn/internal/graph"
	"gsgcn/internal/rng"
)

// Node2VecWalk is a biased second-order random-walk sampler in the
// style of node2vec (Grover & Leskovec, KDD'16): the next step from v
// given the previous vertex t is weighted 1/P for returning to t, 1
// for a common neighbor of t and v, and 1/Q for moving outward. Small
// Q pushes walks outward (DFS-like structural exploration), small P
// keeps them local (BFS-like community coverage). It extends the
// sampler family beyond the paper's frontier sampler, per the stated
// future work.
type Node2VecWalk struct {
	G       *graph.CSR
	Walkers int
	Depth   int
	// P is the return parameter; Q is the in-out parameter. Zero
	// values default to 1 (an unbiased walk).
	P, Q float64
}

// Name implements VertexSampler.
func (s *Node2VecWalk) Name() string { return "node2vec-walk" }

// SampleVertices implements VertexSampler via rejection sampling over
// the neighbor list (the standard trick that avoids materializing the
// transition distribution: accept neighbor w with probability
// weight(w)/maxWeight).
func (s *Node2VecWalk) SampleVertices(r *rng.RNG) []int32 {
	g := s.G
	p, q := s.P, s.Q
	if p <= 0 {
		p = 1
	}
	if q <= 0 {
		q = 1
	}
	maxW := 1.0
	if 1/p > maxW {
		maxW = 1 / p
	}
	if 1/q > maxW {
		maxW = 1 / q
	}
	out := make([]int32, 0, s.Walkers*(s.Depth+1))
	for w := 0; w < s.Walkers; w++ {
		v := int32(r.Intn(g.N))
		out = append(out, v)
		prev := int32(-1)
		for d := 0; d < s.Depth; d++ {
			deg := g.Degree(v)
			if deg == 0 {
				break
			}
			var next int32
			if prev < 0 {
				next = g.Neighbor(v, r.Intn(deg))
			} else {
				// Rejection-sample the biased step.
				for {
					cand := g.Neighbor(v, r.Intn(deg))
					var weight float64
					switch {
					case cand == prev:
						weight = 1 / p
					case g.HasEdge(cand, prev):
						weight = 1
					default:
						weight = 1 / q
					}
					if r.Float64()*maxW < weight {
						next = cand
						break
					}
				}
			}
			out = append(out, next)
			prev, v = v, next
		}
	}
	return out
}

// EdgeInduced samples edges uniformly and induces the subgraph over
// their endpoints — the edge-sampling minibatch construction later
// popularized by GraphSAINT. Unlike RandomEdge (which emits endpoint
// multisets until a vertex budget), EdgeInduced fixes the number of
// sampled edges.
type EdgeInduced struct {
	G     *graph.CSR
	Edges int
}

// Name implements VertexSampler.
func (s *EdgeInduced) Name() string { return "edge-induced" }

// SampleVertices implements VertexSampler.
func (s *EdgeInduced) SampleVertices(r *rng.RNG) []int32 {
	g := s.G
	arcs := int(g.NumDirectedEdges())
	if arcs == 0 {
		return (&RandomNode{G: g, Budget: s.Edges}).SampleVertices(r)
	}
	out := make([]int32, 0, 2*s.Edges)
	for e := 0; e < s.Edges; e++ {
		a := r.Intn(arcs)
		out = append(out, vertexOfArc(g, a), g.ColIdx[a])
	}
	return out
}
