package perf

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkerPoolRunsEveryChunkOnce(t *testing.T) {
	p := NewWorkerPool(4)
	for _, workers := range []int{1, 2, 3, 4, 7, 16, 33} {
		counts := make([]int32, workers)
		p.Run(workers, func(w int) { atomic.AddInt32(&counts[w], 1) })
		for w, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: chunk %d ran %d times, want 1", workers, w, c)
			}
		}
	}
}

func TestParallelCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		for _, workers := range []int{1, 2, 3, 8, 40} {
			var mu sync.Mutex
			seen := make([]int, n)
			Parallel(n, workers, func(_, lo, hi int) {
				mu.Lock()
				defer mu.Unlock()
				for i := lo; i < hi; i++ {
					seen[i]++
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: index %d covered %d times", n, workers, i, c)
				}
			}
		}
	}
}

// TestNestedParallelNoDeadlock exercises parallel regions that launch
// parallel regions from inside pool workers; the inline-fallback
// dispatch must keep making progress even when every pool goroutine is
// occupied by an outer region.
func TestNestedParallelNoDeadlock(t *testing.T) {
	outer := 4 * Shared().Size()
	var total int64
	Parallel(outer, outer, func(_, lo, hi int) {
		for o := lo; o < hi; o++ {
			Parallel(100, 8, func(_, ilo, ihi int) {
				atomic.AddInt64(&total, int64(ihi-ilo))
			})
		}
	})
	if want := int64(outer * 100); total != want {
		t.Fatalf("nested total = %d, want %d", total, want)
	}
}

// TestParallelConcurrentCallers hammers the shared pool from many
// goroutines at once; run with -race to check dispatch safety.
func TestParallelConcurrentCallers(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				sum := make([]int64, 8)
				Parallel(512, 8, func(w, lo, hi int) {
					for i := lo; i < hi; i++ {
						sum[w] += int64(i)
					}
				})
				var s int64
				for _, v := range sum {
					s += v
				}
				if s != 512*511/2 {
					t.Errorf("goroutine %d: sum = %d", g, s)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
