// Package perf provides the parallel-execution substrate used across
// the repository: real goroutine-based data-parallel loops, wall-clock
// timers, and a simulated multicore executor.
//
// The simulated executor exists because the paper's evaluation (Figs.
// 3-4, Table II) ran on a dual-socket 40-core Xeon, while the
// reproduction host may have very few cores. Each parallel region is
// decomposed into the same shards a real run would use; the shards are
// executed (and timed) one by one, and the simulated parallel wall time
// is the critical path -- the maximum shard time -- plus a small modeled
// synchronization term and an optional cross-socket (NUMA) penalty.
// This preserves the *shape* of scaling curves: load imbalance, serial
// bottlenecks and Amdahl effects all show up exactly as they would on
// real silicon, while absolute times remain honest per-shard
// measurements.
package perf

import (
	"math"
	"runtime"
	"sync"
	"time"
)

// Parallel runs fn over the index range [0, n) split into at most
// workers contiguous chunks, dispatched over the shared long-lived
// worker pool. fn receives the worker id and the half-open range
// [lo, hi) it owns. It blocks until all chunks complete. workers <= 1
// (or n <= 1) degrades to a serial call. Parallel does not assume a
// work grain — an index may be one float or one whole sampler
// instance — so callers whose indices are cheap should bound dispatch
// overhead with ParallelMin instead.
//
// The chunk decomposition depends only on (n, workers): chunk w covers
// [w*ceil(n/workers), ...). Kernels that assign each output element to
// exactly one chunk therefore produce bit-identical results however
// the pool schedules the chunks.
func Parallel(n, workers int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	Shared().Run(workers, func(w int) {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo < hi {
			fn(w, lo, hi)
		}
	})
}

// ParallelMin is Parallel with a minimum chunk grain: it caps the
// chunk count so every chunk spans at least minChunk indices, running
// small inputs serially rather than paying pool dispatch for a few
// cheap indices each. The effective decomposition is a pure function
// of (n, minChunk, workers), so kernels whose output elements are
// each owned by one index keep their results bit-identical at every
// worker count.
func ParallelMin(n, minChunk, workers int, fn func(worker, lo, hi int)) {
	if minChunk > 1 && workers > 1 {
		if byGrain := n / minChunk; workers > byGrain {
			workers = byGrain
		}
	}
	Parallel(n, workers, fn)
}

// NumWorkers returns the default worker count for real parallel loops:
// GOMAXPROCS at the time of the call.
func NumWorkers() int { return runtime.GOMAXPROCS(0) }

// SimConfig parameterizes the simulated multicore executor.
type SimConfig struct {
	// BarrierNS is the modeled cost, in nanoseconds, of one barrier
	// among p simulated cores; the total added per region is
	// BarrierNS * log2(p+1). The default (used when zero) is 1500ns,
	// a typical cost for a pthread-style tree barrier.
	BarrierNS float64
	// SocketCores is the number of cores per socket. Shards beyond
	// this count pay the NUMAPenalty multiplier on their measured
	// time, modeling remote-socket memory reads (the paper observes
	// this bend between 20 and 40 cores in Fig. 4A). Zero disables
	// the penalty.
	SocketCores int
	// NUMAPenalty multiplies the measured time of shards scheduled on
	// the remote socket. Ignored when SocketCores is zero. A value
	// <= 1 disables the penalty.
	NUMAPenalty float64
}

// DefaultSim mirrors the paper's platform: dual-socket, 20 cores per
// socket, with a mild 15% remote-read penalty.
var DefaultSim = SimConfig{BarrierNS: 1500, SocketCores: 20, NUMAPenalty: 1.15}

// SimResult reports the outcome of one simulated parallel region.
type SimResult struct {
	Wall     time.Duration // simulated parallel wall time (critical path + sync)
	Total    time.Duration // sum of all shard times (serial work)
	MaxShard time.Duration // slowest shard, before sync/NUMA adjustments
	Shards   int
}

// Speedup returns Total / Wall, the simulated parallel speedup of the
// region relative to executing all shards serially.
func (r SimResult) Speedup() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Total) / float64(r.Wall)
}

// SimParallel executes shard(0..p-1) serially, timing each, and returns
// the simulated parallel timing under cfg. The shard function must
// perform the work that simulated core i would perform in a real run.
func SimParallel(p int, cfg SimConfig, shard func(i int)) SimResult {
	if p < 1 {
		p = 1
	}
	barrier := cfg.BarrierNS
	if barrier == 0 {
		barrier = 1500
	}
	var total, max float64 // nanoseconds
	for i := 0; i < p; i++ {
		start := time.Now()
		shard(i)
		t := float64(time.Since(start))
		total += t
		if cfg.SocketCores > 0 && cfg.NUMAPenalty > 1 && i >= cfg.SocketCores {
			t *= cfg.NUMAPenalty
		}
		if t > max {
			max = t
		}
	}
	wall := max + barrier*math.Log2(float64(p)+1)
	return SimResult{
		Wall:     time.Duration(wall),
		Total:    time.Duration(total),
		MaxShard: time.Duration(max),
		Shards:   p,
	}
}

// SimRange is a convenience wrapper: it splits [0, n) into p contiguous
// shards and simulates executing them on p cores.
func SimRange(n, p int, cfg SimConfig, fn func(lo, hi int)) SimResult {
	if p > n && n > 0 {
		p = n
	}
	if p < 1 {
		p = 1
	}
	chunk := (n + p - 1) / p
	return SimParallel(p, cfg, func(i int) {
		lo := i * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo < hi {
			fn(lo, hi)
		}
	})
}

// Timer accumulates named wall-clock segments; it backs the
// execution-time breakdown in Fig. 3D.
type Timer struct {
	mu    sync.Mutex
	spans map[string]time.Duration
}

// NewTimer returns an empty Timer.
func NewTimer() *Timer { return &Timer{spans: make(map[string]time.Duration)} }

// Time runs fn and charges its duration to the named segment.
func (t *Timer) Time(name string, fn func()) {
	start := time.Now()
	fn()
	t.Add(name, time.Since(start))
}

// Add charges d to the named segment.
func (t *Timer) Add(name string, d time.Duration) {
	t.mu.Lock()
	t.spans[name] += d
	t.mu.Unlock()
}

// Get returns the accumulated duration of the named segment.
func (t *Timer) Get(name string) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spans[name]
}

// Segments returns a copy of all accumulated segments.
func (t *Timer) Segments() map[string]time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]time.Duration, len(t.spans))
	for k, v := range t.spans {
		out[k] = v
	}
	return out
}

// Total returns the sum over all segments.
func (t *Timer) Total() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	var sum time.Duration
	for _, v := range t.spans {
		sum += v
	}
	return sum
}

// Reset clears all segments.
func (t *Timer) Reset() {
	t.mu.Lock()
	t.spans = make(map[string]time.Duration)
	t.mu.Unlock()
}
