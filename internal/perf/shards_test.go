package perf

import (
	"testing"
	"time"
)

func TestSimShardTimesRunsAll(t *testing.T) {
	var seen []int
	ts := SimShardTimes(6, func(i int) { seen = append(seen, i) })
	if len(ts) != 6 || len(seen) != 6 {
		t.Fatalf("len(times)=%d len(seen)=%d", len(ts), len(seen))
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("shards executed out of order: %v", seen)
		}
	}
	for i, d := range ts {
		if d < 0 {
			t.Errorf("shard %d has negative time %v", i, d)
		}
	}
}

func TestGroupWallSingleCore(t *testing.T) {
	times := []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond}
	res := GroupWall(times, 1, SimConfig{})
	if res.Total != 6*time.Millisecond {
		t.Errorf("Total = %v, want 6ms", res.Total)
	}
	// One group: wall ~ total + barrier.
	if res.Wall < res.Total {
		t.Errorf("Wall %v < Total %v on one core", res.Wall, res.Total)
	}
	if res.Shards != 1 {
		t.Errorf("Shards = %d, want 1", res.Shards)
	}
}

func TestGroupWallBalanced(t *testing.T) {
	times := make([]time.Duration, 8)
	for i := range times {
		times[i] = 10 * time.Millisecond
	}
	res := GroupWall(times, 4, SimConfig{})
	// Each group holds 2 shards = 20ms; speedup ~4.
	if res.MaxShard != 20*time.Millisecond {
		t.Errorf("MaxShard = %v, want 20ms", res.MaxShard)
	}
	if s := res.Speedup(); s < 3.5 || s > 4.1 {
		t.Errorf("speedup = %.2f, want ~4", s)
	}
}

func TestGroupWallImbalanced(t *testing.T) {
	times := []time.Duration{100 * time.Millisecond, time.Millisecond, time.Millisecond, time.Millisecond}
	res := GroupWall(times, 4, SimConfig{})
	if s := res.Speedup(); s > 1.2 {
		t.Errorf("imbalanced speedup = %.2f, want ~1", s)
	}
}

func TestGroupWallNUMA(t *testing.T) {
	times := make([]time.Duration, 4)
	for i := range times {
		times[i] = 10 * time.Millisecond
	}
	res := GroupWall(times, 4, SimConfig{SocketCores: 2, NUMAPenalty: 2})
	// Groups 2,3 pay 2x: wall ~20ms, total 40ms, speedup ~2.
	if s := res.Speedup(); s > 2.2 {
		t.Errorf("NUMA speedup = %.2f, want <= ~2", s)
	}
}

func TestGroupWallMoreCoresThanShards(t *testing.T) {
	times := []time.Duration{time.Millisecond, time.Millisecond}
	res := GroupWall(times, 16, SimConfig{})
	if res.Shards > 2 {
		t.Errorf("Shards = %d, want <= 2", res.Shards)
	}
}

func TestGroupWallEquivalentToSimRangeGrouping(t *testing.T) {
	// Grouping 8 shards onto 2 cores must equal a direct 2-way split:
	// group sums match chunked partition sums.
	times := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8} // arbitrary units
	res := GroupWall(times, 2, SimConfig{BarrierNS: 1})
	// Groups: [1..4] = 10, [5..8] = 26.
	if res.MaxShard != 26 {
		t.Errorf("MaxShard = %v, want 26", res.MaxShard)
	}
	if res.Total != 36 {
		t.Errorf("Total = %v, want 36", res.Total)
	}
}

func TestSumDurations(t *testing.T) {
	if got := SumDurations([]time.Duration{1, 2, 3}); got != 6 {
		t.Errorf("SumDurations = %v", got)
	}
	if got := SumDurations(nil); got != 0 {
		t.Errorf("SumDurations(nil) = %v", got)
	}
}
