package perf

import (
	"runtime"
	"sync"
)

// WorkerPool is a set of long-lived goroutines executing sharded
// parallel loops. Spawning a goroutine per chunk (as the previous
// Parallel did) costs a stack allocation and scheduler round trip on
// every kernel call; training issues thousands of small parallel
// regions per epoch (one per matmul / propagation), so those costs
// land squarely on the hot path. A WorkerPool pays the goroutine
// start-up once and then dispatches chunks over a channel.
//
// Dispatch is deadlock-free by construction: the submitting goroutine
// offers each chunk to the pool with a non-blocking send and runs the
// chunk inline when no worker accepts it. Nested parallel regions
// (a pool task that itself calls Run or Parallel) therefore always
// make progress — in the worst case the nested region degrades to a
// serial loop on the occupied worker.
type WorkerPool struct {
	tasks chan poolTask
	size  int
}

type poolTask struct {
	fn func(w int)
	w  int
	wg *sync.WaitGroup
}

// NewWorkerPool starts size long-lived workers (size <= 0 means
// GOMAXPROCS). Pools are never torn down in normal operation; create
// one per process (or use Shared) rather than per call site.
func NewWorkerPool(size int) *WorkerPool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	p := &WorkerPool{tasks: make(chan poolTask), size: size}
	for i := 0; i < size; i++ {
		go p.worker()
	}
	return p
}

func (p *WorkerPool) worker() {
	for t := range p.tasks {
		t.fn(t.w)
		t.wg.Done()
	}
}

// Size returns the number of long-lived workers.
func (p *WorkerPool) Size() int { return p.size }

// Run executes fn(0) .. fn(workers-1), distributing chunks across the
// pool and running whatever the pool cannot absorb inline on the
// calling goroutine. It returns when every chunk has completed. The
// decomposition (which w values run) depends only on workers, never on
// how many pool goroutines happened to pick chunks up, so callers that
// shard deterministic work by chunk id get identical results at every
// pool size.
func (p *WorkerPool) Run(workers int, fn func(w int)) {
	if workers <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		if !p.offer(poolTask{fn: fn, w: w, wg: &wg}) {
			// Pool saturated: run inline.
			fn(w)
			wg.Done()
		}
	}
	fn(0)
	wg.Wait()
}

// offer hands a task to a parked worker, yielding the processor a few
// times to let workers that are between tasks reach their receive
// before giving up. The channel must stay unbuffered and the final
// fallback must stay inline: a task parked in a buffer while every
// worker is blocked inside an outer region's wg.Wait would deadlock
// nested parallel regions, whereas a task handed to a parked worker
// is by definition being executed.
func (p *WorkerPool) offer(t poolTask) bool {
	for attempt := 0; ; attempt++ {
		select {
		case p.tasks <- t:
			return true
		default:
		}
		if attempt == 2 {
			return false
		}
		runtime.Gosched()
	}
}

var (
	sharedOnce sync.Once
	sharedPool *WorkerPool
)

// Shared returns the process-wide worker pool, sized GOMAXPROCS at
// first use. Parallel and every dense kernel dispatch through it.
func Shared() *WorkerPool {
	sharedOnce.Do(func() { sharedPool = NewWorkerPool(0) })
	return sharedPool
}
