package perf

import (
	"sync/atomic"
	"testing"
	"time"

	"gsgcn/internal/testutil"
)

func TestParallelCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7, 100} {
		for _, n := range []int{0, 1, 5, 64, 1000} {
			hits := make([]int32, n)
			Parallel(n, workers, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestParallelWorkerIDsDistinct(t *testing.T) {
	const n, workers = 100, 4
	seen := make([]int32, workers)
	Parallel(n, workers, func(w, lo, hi int) {
		atomic.AddInt32(&seen[w], 1)
	})
	for w, c := range seen {
		if c != 1 {
			t.Errorf("worker %d invoked %d times, want 1", w, c)
		}
	}
}

func TestParallelZeroAndNegative(t *testing.T) {
	called := false
	Parallel(0, 4, func(_, _, _ int) { called = true })
	Parallel(-5, 4, func(_, _, _ int) { called = true })
	if called {
		t.Fatal("Parallel invoked fn for empty range")
	}
}

func TestSimParallelCoversShards(t *testing.T) {
	var order []int
	res := SimParallel(5, SimConfig{}, func(i int) { order = append(order, i) })
	if len(order) != 5 {
		t.Fatalf("got %d shards, want 5", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("shards out of order: %v", order)
		}
	}
	if res.Shards != 5 {
		t.Errorf("Shards = %d, want 5", res.Shards)
	}
	if res.Wall <= 0 || res.Total <= 0 {
		t.Errorf("non-positive timing: %+v", res)
	}
}

func TestSimParallelCriticalPath(t *testing.T) {
	// Both measurements are wall-clock, so a descheduled shard on a
	// busy CI host can inflate them; testutil.BestOf retries before
	// declaring the simulator wrong.
	//
	// One slow shard dominates: speedup should be well below p.
	if s, ok := testutil.BestOf(3, func() (float64, bool) {
		res := SimParallel(4, SimConfig{}, func(i int) {
			d := time.Millisecond
			if i == 0 {
				d = 10 * time.Millisecond
			}
			busy(d)
		})
		return res.Speedup(), res.Speedup() <= 2.5
	}); !ok {
		t.Errorf("imbalanced region reported speedup %.2f, want < 2.5", s)
	}
	// Balanced shards: speedup should approach p.
	if s, ok := testutil.BestOf(3, func() (float64, bool) {
		res := SimParallel(4, SimConfig{}, func(i int) { busy(5 * time.Millisecond) })
		return res.Speedup(), res.Speedup() >= 3 && res.Speedup() <= 4.5
	}); !ok {
		t.Errorf("balanced region reported speedup %.2f, want ~4", s)
	}
}

func TestSimParallelNUMAPenalty(t *testing.T) {
	cfg := SimConfig{SocketCores: 2, NUMAPenalty: 3.0}
	res := SimParallel(4, cfg, func(i int) { busy(2 * time.Millisecond) })
	// Shards 2,3 pay 3x, so wall ~6ms while total ~8ms: speedup < 4/2.
	if s := res.Speedup(); s > 2.0 {
		t.Errorf("NUMA-penalized speedup %.2f, want < 2.0", s)
	}
}

func TestSimRangePartition(t *testing.T) {
	const n = 103
	hits := make([]int, n)
	SimRange(n, 7, SimConfig{}, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hits[i]++
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestSimRangeMoreShardsThanWork(t *testing.T) {
	hits := make([]int, 3)
	res := SimRange(3, 16, SimConfig{}, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hits[i]++
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
	if res.Shards > 3 {
		t.Errorf("Shards = %d, want <= 3", res.Shards)
	}
}

func TestTimerAccumulates(t *testing.T) {
	tm := NewTimer()
	tm.Add("a", time.Second)
	tm.Add("a", time.Second)
	tm.Add("b", time.Millisecond)
	if got := tm.Get("a"); got != 2*time.Second {
		t.Errorf("Get(a) = %v, want 2s", got)
	}
	if got := tm.Total(); got != 2*time.Second+time.Millisecond {
		t.Errorf("Total = %v", got)
	}
	seg := tm.Segments()
	if len(seg) != 2 {
		t.Errorf("Segments has %d entries, want 2", len(seg))
	}
	tm.Reset()
	if tm.Total() != 0 {
		t.Error("Reset did not clear segments")
	}
}

func TestTimerTime(t *testing.T) {
	tm := NewTimer()
	tm.Time("x", func() { busy(2 * time.Millisecond) })
	if tm.Get("x") < time.Millisecond {
		t.Errorf("Time charged %v, want >= 1ms", tm.Get("x"))
	}
}

// busy spins for approximately d without sleeping, so durations are
// attributable to CPU work in both real and simulated executors.
func busy(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

func TestSpeedupZeroWall(t *testing.T) {
	if (SimResult{}).Speedup() != 0 {
		t.Error("zero-wall SimResult should report 0 speedup")
	}
}
