package perf

import (
	"math"
	"time"
)

// SimShardTimes executes the given work decomposed into n shards,
// serially, and returns each shard's measured duration. Combined with
// GroupWall it lets a harness measure a parallel decomposition once
// and then evaluate the simulated wall time for *any* smaller core
// count whose partition boundaries align (grouping k consecutive
// shards per core reproduces the coarser partition exactly).
func SimShardTimes(n int, shard func(i int)) []time.Duration {
	times := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		shard(i)
		times[i] = time.Since(start)
	}
	return times
}

// GroupWall folds per-shard times into `cores` contiguous groups and
// returns the simulated parallel timing under cfg: each group is one
// simulated core; groups scheduled beyond cfg.SocketCores pay the
// NUMA penalty; wall = slowest group + barrier term.
func GroupWall(times []time.Duration, cores int, cfg SimConfig) SimResult {
	n := len(times)
	if cores < 1 {
		cores = 1
	}
	if cores > n && n > 0 {
		cores = n
	}
	barrier := cfg.BarrierNS
	if barrier == 0 {
		barrier = 1500
	}
	chunk := (n + cores - 1) / cores
	var total, max float64
	groups := 0
	for g := 0; g*chunk < n; g++ {
		lo := g * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		var sum float64
		for _, t := range times[lo:hi] {
			sum += float64(t)
			total += float64(t)
		}
		if cfg.SocketCores > 0 && cfg.NUMAPenalty > 1 && g >= cfg.SocketCores {
			sum *= cfg.NUMAPenalty
		}
		if sum > max {
			max = sum
		}
		groups++
	}
	wall := max + barrier*math.Log2(float64(groups)+1)
	return SimResult{
		Wall:     time.Duration(wall),
		Total:    time.Duration(total),
		MaxShard: time.Duration(max),
		Shards:   groups,
	}
}

// SumDurations adds a slice of durations.
func SumDurations(ts []time.Duration) time.Duration {
	var s time.Duration
	for _, t := range ts {
		s += t
	}
	return s
}
