package nn

import (
	"math"
	"testing"

	"gsgcn/internal/graph"
	"gsgcn/internal/mat"
	"gsgcn/internal/rng"
)

func testCtx(tb testing.TB, n int) *Ctx {
	tb.Helper()
	// A ring plus chords gives every vertex degree >= 2.
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32((i + 1) % n)})
		edges = append(edges, graph.Edge{U: int32(i), V: int32((i + 3) % n)})
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		tb.Fatal(err)
	}
	return &Ctx{G: g, Q: 2, Workers: 1}
}

func randMat(r *rng.RNG, rows, cols int) *mat.Dense {
	m := mat.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

// objective contracts a matrix against fixed coefficients so we get a
// scalar function for numerical differentiation.
func objective(out, coeff *mat.Dense) float64 {
	s := 0.0
	for i := range out.Data {
		s += out.Data[i] * coeff.Data[i]
	}
	return s
}

func TestGCNLayerShapes(t *testing.T) {
	ctx := testCtx(t, 12)
	r := rng.New(1)
	l := NewGCNLayer(6, 4, r)
	h := randMat(r, 12, 6)
	out := l.Forward(ctx, h)
	if out.Rows != 12 || out.Cols != 8 {
		t.Fatalf("output shape %dx%d, want 12x8", out.Rows, out.Cols)
	}
	if l.OutWidth() != 8 {
		t.Errorf("OutWidth = %d, want 8", l.OutWidth())
	}
	dh := l.Backward(ctx, randMat(r, 12, 8))
	if dh.Rows != 12 || dh.Cols != 6 {
		t.Fatalf("input grad shape %dx%d, want 12x6", dh.Rows, dh.Cols)
	}
}

func TestGCNLayerReLUNonNegative(t *testing.T) {
	ctx := testCtx(t, 10)
	r := rng.New(2)
	l := NewGCNLayer(4, 3, r)
	out := l.Forward(ctx, randMat(r, 10, 4))
	for _, v := range out.Data {
		if v < 0 {
			t.Fatalf("ReLU output contains %v", v)
		}
	}
	l.Activate = false
	out = l.Forward(ctx, randMat(r, 10, 4))
	neg := false
	for _, v := range out.Data {
		if v < 0 {
			neg = true
		}
	}
	if !neg {
		t.Error("deactivated layer produced no negative values; suspicious")
	}
}

// numericalGrad computes d objective / d x[i] by central differences.
func numericalGrad(x *mat.Dense, eval func() float64) *mat.Dense {
	const eps = 1e-6
	g := mat.New(x.Rows, x.Cols)
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		fp := eval()
		x.Data[i] = orig - eps
		fm := eval()
		x.Data[i] = orig
		g.Data[i] = (fp - fm) / (2 * eps)
	}
	return g
}

func TestGCNLayerGradientNumeric(t *testing.T) {
	const n, in, out = 9, 5, 3
	ctx := testCtx(t, n)
	r := rng.New(3)
	l := NewGCNLayer(in, out, r)
	l.Activate = false // keep the objective smooth for central differences
	h := randMat(r, n, in)
	coeff := randMat(r, n, 2*out)

	eval := func() float64 { return objective(l.Forward(ctx, h), coeff) }

	eval() // populate caches
	l.WSelf.ZeroGrad()
	l.WNeigh.ZeroGrad()
	dh := l.Backward(ctx, coeff)

	for _, tc := range []struct {
		name     string
		analytic *mat.Dense
		variable *mat.Dense
	}{
		{"dH", dh, h},
		{"dWself", l.WSelf.Grad, l.WSelf.W},
		{"dWneigh", l.WNeigh.Grad, l.WNeigh.W},
	} {
		num := numericalGrad(tc.variable, eval)
		if d := tc.analytic.MaxAbsDiff(num); d > 1e-5 {
			t.Errorf("%s: max |analytic - numeric| = %g", tc.name, d)
		}
	}
}

func TestGCNLayerGradientNumericWithReLU(t *testing.T) {
	// With ReLU active the objective is piecewise linear; points on a
	// kink are measure-zero, so central differences still agree.
	const n, in, out = 8, 4, 2
	ctx := testCtx(t, n)
	r := rng.New(4)
	l := NewGCNLayer(in, out, r)
	h := randMat(r, n, in)
	coeff := randMat(r, n, 2*out)
	eval := func() float64 { return objective(l.Forward(ctx, h), coeff) }
	eval()
	l.WSelf.ZeroGrad()
	l.WNeigh.ZeroGrad()
	dh := l.Backward(ctx, coeff)
	num := numericalGrad(h, eval)
	if d := dh.MaxAbsDiff(num); d > 1e-5 {
		t.Errorf("dH with ReLU: max diff %g", d)
	}
}

func TestDenseGradientNumeric(t *testing.T) {
	const n, in, out = 7, 6, 4
	ctx := testCtx(t, n)
	r := rng.New(5)
	d := NewDense(in, out, r)
	h := randMat(r, n, in)
	coeff := randMat(r, n, out)
	eval := func() float64 { return objective(d.Forward(ctx, h), coeff) }
	eval()
	d.W.ZeroGrad()
	d.B.ZeroGrad()
	dh := d.Backward(ctx, coeff)
	for _, tc := range []struct {
		name     string
		analytic *mat.Dense
		variable *mat.Dense
	}{
		{"dH", dh, h},
		{"dW", d.W.Grad, d.W.W},
		{"dB", d.B.Grad, d.B.W},
	} {
		num := numericalGrad(tc.variable, eval)
		if diff := tc.analytic.MaxAbsDiff(num); diff > 1e-5 {
			t.Errorf("%s: max diff %g", tc.name, diff)
		}
	}
}

func TestSigmoidBCEGradientNumeric(t *testing.T) {
	r := rng.New(6)
	logits := randMat(r, 6, 5)
	labels := mat.New(6, 5)
	for i := range labels.Data {
		if r.Float64() < 0.4 {
			labels.Data[i] = 1
		}
	}
	mask := []int{0, 2, 5}
	var loss Loss = SigmoidBCE{}
	dl := mat.New(6, 5)
	loss.Eval(logits, labels, mask, dl)
	num := numericalGrad(logits, func() float64 {
		tmp := mat.New(6, 5)
		return loss.Eval(logits, labels, mask, tmp)
	})
	if d := dl.MaxAbsDiff(num); d > 1e-6 {
		t.Errorf("BCE gradient: max diff %g", d)
	}
	// Unmasked rows must have zero gradient.
	for j := 0; j < 5; j++ {
		if dl.At(1, j) != 0 {
			t.Error("masked-out row has non-zero gradient")
		}
	}
}

func TestSoftmaxCEGradientNumeric(t *testing.T) {
	r := rng.New(7)
	logits := randMat(r, 5, 4)
	labels := mat.New(5, 4)
	for i := 0; i < 5; i++ {
		labels.Set(i, r.Intn(4), 1)
	}
	var loss Loss = SoftmaxCE{}
	dl := mat.New(5, 4)
	loss.Eval(logits, labels, nil, dl)
	num := numericalGrad(logits, func() float64 {
		tmp := mat.New(5, 4)
		return loss.Eval(logits, labels, nil, tmp)
	})
	if d := dl.MaxAbsDiff(num); d > 1e-6 {
		t.Errorf("softmax CE gradient: max diff %g", d)
	}
}

func TestLossPerfectPrediction(t *testing.T) {
	labels := mat.FromData(2, 3, []float64{1, 0, 0, 0, 1, 0})
	confident := mat.FromData(2, 3, []float64{30, -30, -30, -30, 30, -30})
	dl := mat.New(2, 3)
	if l := (SigmoidBCE{}).Eval(confident, labels, nil, dl); l > 1e-6 {
		t.Errorf("BCE on perfect confident prediction = %g", l)
	}
	if l := (SoftmaxCE{}).Eval(confident, labels, nil, dl); l > 1e-6 {
		t.Errorf("CE on perfect confident prediction = %g", l)
	}
}

func TestLossEmptyMask(t *testing.T) {
	logits := mat.New(3, 2)
	labels := mat.New(3, 2)
	dl := mat.New(3, 2)
	dl.Fill(9)
	if l := (SigmoidBCE{}).Eval(logits, labels, []int{}, dl); l != 0 {
		t.Errorf("empty-mask loss = %v", l)
	}
	for _, v := range dl.Data {
		if v != 0 {
			t.Fatal("empty-mask gradient not cleared")
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	logits := mat.FromData(1, 3, []float64{1e4, -1e4, 0})
	labels := mat.FromData(1, 3, []float64{1, 0, 0})
	dl := mat.New(1, 3)
	l := (SoftmaxCE{}).Eval(logits, labels, nil, dl)
	if math.IsNaN(l) || math.IsInf(l, 0) {
		t.Fatalf("loss overflow: %v", l)
	}
	for _, v := range dl.Data {
		if math.IsNaN(v) {
			t.Fatal("gradient NaN under extreme logits")
		}
	}
}

func TestAdamMinimizesQuadratic(t *testing.T) {
	p := NewParam("x", 1, 4)
	for i := range p.W.Data {
		p.W.Data[i] = 5
	}
	target := []float64{1, -2, 3, 0}
	opt := NewAdam(0.05)
	for step := 0; step < 2000; step++ {
		for i := range p.W.Data {
			p.Grad.Data[i] = 2 * (p.W.Data[i] - target[i])
		}
		opt.Step([]*Param{p})
	}
	for i, want := range target {
		if math.Abs(p.W.Data[i]-want) > 0.01 {
			t.Errorf("param %d = %v, want %v", i, p.W.Data[i], want)
		}
	}
	if opt.Steps() != 2000 {
		t.Errorf("Steps = %d", opt.Steps())
	}
}

func TestGlorotInitBounds(t *testing.T) {
	r := rng.New(8)
	p := NewParam("w", 30, 20)
	p.GlorotInit(r)
	limit := math.Sqrt(6.0 / 50.0)
	nonzero := 0
	for _, v := range p.W.Data {
		if math.Abs(v) > limit {
			t.Fatalf("weight %v exceeds Glorot limit %v", v, limit)
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < len(p.W.Data)/2 {
		t.Error("Glorot init left most weights zero")
	}
}

func TestPredictMultiAndSingle(t *testing.T) {
	logits := mat.FromData(2, 3, []float64{2, -1, 0.5, -3, -2, -1})
	multi := PredictMulti(logits)
	wantMulti := []float64{1, 0, 1, 0, 0, 0}
	for i, w := range wantMulti {
		if multi.Data[i] != w {
			t.Fatalf("PredictMulti = %v", multi.Data)
		}
	}
	single := PredictSingle(logits)
	wantSingle := []float64{1, 0, 0, 0, 0, 1}
	for i, w := range wantSingle {
		if single.Data[i] != w {
			t.Fatalf("PredictSingle = %v", single.Data)
		}
	}
}

func TestF1MicroHandCase(t *testing.T) {
	pred := mat.FromData(2, 2, []float64{1, 0, 1, 1})
	labels := mat.FromData(2, 2, []float64{1, 1, 0, 1})
	// tp=2 (0,0 and 1,1), fp=1 (1,0), fn=1 (0,1): F1 = 4/(4+1+1) = 2/3.
	got := F1Micro(pred, labels, nil)
	if math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("F1Micro = %v, want 2/3", got)
	}
}

func TestF1MicroPerfectAndZero(t *testing.T) {
	labels := mat.FromData(2, 2, []float64{1, 0, 0, 1})
	if got := F1Micro(labels, labels, nil); got != 1 {
		t.Errorf("perfect F1 = %v", got)
	}
	zero := mat.New(2, 2)
	if got := F1Micro(zero, labels, nil); got != 0 {
		t.Errorf("all-negative F1 = %v", got)
	}
}

func TestF1MicroRowsSubset(t *testing.T) {
	pred := mat.FromData(2, 2, []float64{1, 0, 0, 0})
	labels := mat.FromData(2, 2, []float64{1, 0, 1, 1})
	if got := F1Micro(pred, labels, []int{0}); got != 1 {
		t.Errorf("subset F1 = %v, want 1", got)
	}
}

func TestF1MacroHandCase(t *testing.T) {
	pred := mat.FromData(2, 2, []float64{1, 0, 1, 0})
	labels := mat.FromData(2, 2, []float64{1, 0, 0, 1})
	// Class 0: tp=1 fp=1 fn=0 -> F1 = 2/3. Class 1: tp=0 -> 0.
	got := F1Macro(pred, labels, nil)
	if math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("F1Macro = %v, want 1/3", got)
	}
}

func TestTimerSegmentsCharged(t *testing.T) {
	ctx := testCtx(t, 10)
	tm := newTimer()
	ctx.Timer = tm
	r := rng.New(9)
	l := NewGCNLayer(4, 3, r)
	out := l.Forward(ctx, randMat(r, 10, 4))
	l.Backward(ctx, out)
	seg := tm.Segments()
	if seg["featprop"] <= 0 || seg["weight"] <= 0 {
		t.Errorf("timer segments missing: %v", seg)
	}
}
