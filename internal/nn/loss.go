package nn

import (
	"math"

	"gsgcn/internal/mat"
)

// Loss evaluates a training criterion on logits against {0,1} label
// matrices and produces the gradient w.r.t. the logits. mask, when
// non-nil, restricts the loss to the given rows (e.g. only labeled
// training vertices of a sampled subgraph); unmasked rows contribute
// zero loss and zero gradient.
type Loss interface {
	Name() string
	// Eval returns the mean loss over the selected rows and writes
	// dLogits (same shape as logits).
	Eval(logits, labels *mat.Dense, mask []int, dLogits *mat.Dense) float64
}

// SigmoidBCE is elementwise binary cross-entropy with logits — the
// multi-label criterion used for PPI/Yelp/Amazon.
type SigmoidBCE struct{}

// Name implements Loss.
func (SigmoidBCE) Name() string { return "sigmoid-bce" }

// Eval implements Loss. The loss per element is computed in the
// numerically stable form max(z,0) - z*y + log(1+exp(-|z|)).
func (SigmoidBCE) Eval(logits, labels *mat.Dense, mask []int, dLogits *mat.Dense) float64 {
	checkLossShapes(logits, labels, dLogits)
	rows := maskOrAll(mask, logits.Rows)
	if len(rows) == 0 {
		dLogits.Zero()
		return 0
	}
	dLogits.Zero()
	total := 0.0
	inv := 1 / float64(len(rows))
	c := logits.Cols
	for _, i := range rows {
		zrow := logits.Row(i)
		yrow := labels.Row(i)
		drow := dLogits.Row(i)
		for j := 0; j < c; j++ {
			z, y := zrow[j], yrow[j]
			total += math.Max(z, 0) - z*y + math.Log1p(math.Exp(-math.Abs(z)))
			drow[j] = (sigmoid(z) - y) * inv
		}
	}
	return total * inv
}

// SoftmaxCE is categorical cross-entropy over mutually exclusive
// classes — the single-label criterion used for Reddit.
type SoftmaxCE struct{}

// Name implements Loss.
func (SoftmaxCE) Name() string { return "softmax-ce" }

// Eval implements Loss.
func (SoftmaxCE) Eval(logits, labels *mat.Dense, mask []int, dLogits *mat.Dense) float64 {
	checkLossShapes(logits, labels, dLogits)
	rows := maskOrAll(mask, logits.Rows)
	if len(rows) == 0 {
		dLogits.Zero()
		return 0
	}
	dLogits.Zero()
	total := 0.0
	inv := 1 / float64(len(rows))
	c := logits.Cols
	probs := make([]float64, c)
	for _, i := range rows {
		zrow := logits.Row(i)
		yrow := labels.Row(i)
		drow := dLogits.Row(i)
		maxZ := zrow[0]
		for _, z := range zrow[1:] {
			if z > maxZ {
				maxZ = z
			}
		}
		sum := 0.0
		for j, z := range zrow {
			probs[j] = math.Exp(z - maxZ)
			sum += probs[j]
		}
		logSum := math.Log(sum) + maxZ
		for j := 0; j < c; j++ {
			p := probs[j] / sum
			drow[j] = (p - yrow[j]) * inv
			if yrow[j] == 1 {
				total += logSum - zrow[j]
			}
		}
	}
	return total * inv
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

func checkLossShapes(logits, labels, dLogits *mat.Dense) {
	if logits.Rows != labels.Rows || logits.Cols != labels.Cols ||
		logits.Rows != dLogits.Rows || logits.Cols != dLogits.Cols {
		panic("nn: loss shape mismatch")
	}
}

func maskOrAll(mask []int, n int) []int {
	if mask != nil {
		return mask
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	return all
}
