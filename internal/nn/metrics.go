package nn

import "gsgcn/internal/mat"

// PredictMulti thresholds sigmoid(logits) at 0.5 — equivalently
// logits at 0 — producing a {0,1} multi-hot prediction matrix.
func PredictMulti(logits *mat.Dense) *mat.Dense {
	out := mat.New(logits.Rows, logits.Cols)
	for i, z := range logits.Data {
		if z > 0 {
			out.Data[i] = 1
		}
	}
	return out
}

// PredictSingle one-hot-encodes the argmax class of each row.
func PredictSingle(logits *mat.Dense) *mat.Dense {
	out := mat.New(logits.Rows, logits.Cols)
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		best := 0
		for j, z := range row {
			if z > row[best] {
				best = j
			}
		}
		out.Set(i, best, 1)
	}
	return out
}

// F1Micro computes the micro-averaged F1 score between {0,1}
// prediction and label matrices over the given rows (all rows when
// rows is nil). This is the accuracy measure of the paper's Figure 2.
// For single-label (one-hot) data micro-F1 equals plain accuracy.
func F1Micro(pred, labels *mat.Dense, rows []int) float64 {
	rows = maskOrAll(rows, pred.Rows)
	var tp, fp, fn float64
	c := pred.Cols
	for _, i := range rows {
		prow := pred.Row(i)
		lrow := labels.Row(i)
		for j := 0; j < c; j++ {
			switch {
			case prow[j] == 1 && lrow[j] == 1:
				tp++
			case prow[j] == 1 && lrow[j] == 0:
				fp++
			case prow[j] == 0 && lrow[j] == 1:
				fn++
			}
		}
	}
	if tp == 0 {
		return 0
	}
	return 2 * tp / (2*tp + fp + fn)
}

// F1Macro computes the macro-averaged F1 (unweighted mean of
// per-class F1 scores), a secondary metric for skewed label sets.
func F1Macro(pred, labels *mat.Dense, rows []int) float64 {
	rows = maskOrAll(rows, pred.Rows)
	c := pred.Cols
	tp := make([]float64, c)
	fp := make([]float64, c)
	fn := make([]float64, c)
	for _, i := range rows {
		prow := pred.Row(i)
		lrow := labels.Row(i)
		for j := 0; j < c; j++ {
			switch {
			case prow[j] == 1 && lrow[j] == 1:
				tp[j]++
			case prow[j] == 1 && lrow[j] == 0:
				fp[j]++
			case prow[j] == 0 && lrow[j] == 1:
				fn[j]++
			}
		}
	}
	sum := 0.0
	for j := 0; j < c; j++ {
		if tp[j] > 0 {
			sum += 2 * tp[j] / (2*tp[j] + fp[j] + fn[j])
		}
	}
	return sum / float64(c)
}
