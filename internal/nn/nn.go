// Package nn implements the neural-network kernels of GCN training:
// the GCN layer (mean feature aggregation + self/neighbor weight
// application + concatenation + ReLU, exactly Algorithm 1 lines 6-9),
// a dense classification head, sigmoid-BCE and softmax-CE losses,
// the Adam optimizer, and F1 metrics.
//
// All backward passes are hand-derived and verified against numerical
// gradients in the tests. The feature-aggregation step is routed
// through the partition package so that training exercises the
// paper's cache-aware feature-dimension partitioning (Section V).
package nn

import (
	"math"

	"gsgcn/internal/graph"
	"gsgcn/internal/mat"
	"gsgcn/internal/perf"
	"gsgcn/internal/rng"
)

// Ctx carries the execution environment of one forward/backward pass:
// the (sub)graph to propagate over, the feature-partition count Q,
// the real worker goroutine budget, and an optional timer that
// receives the "featprop" and "weight" segments used by the Fig. 3
// breakdown.
type Ctx struct {
	G       *graph.CSR
	Q       int
	Workers int
	Timer   *perf.Timer
	// Train enables stochastic regularization (dropout); inference
	// contexts leave it false.
	Train bool
	// DropRate is the inverted-dropout probability applied to each
	// GCN layer's input when Train is set (0 disables).
	DropRate float64
	// Rng drives dropout masks; required when DropRate > 0 and Train.
	Rng *rng.RNG
}

func (c *Ctx) time(name string, fn func()) {
	if c.Timer != nil {
		c.Timer.Time(name, fn)
		return
	}
	fn()
}

// Param is one trainable tensor with its gradient and Adam state.
type Param struct {
	Name string
	W    *mat.Dense
	Grad *mat.Dense
	m, v *mat.Dense // Adam moments, lazily allocated
}

// NewParam allocates a parameter with zeroed weight and gradient.
func NewParam(name string, rows, cols int) *Param {
	return &Param{Name: name, W: mat.New(rows, cols), Grad: mat.New(rows, cols)}
}

// GlorotInit fills p.W with Glorot/Xavier-uniform values.
func (p *Param) GlorotInit(r *rng.RNG) {
	limit := math.Sqrt(6 / float64(p.W.Rows+p.W.Cols))
	for i := range p.W.Data {
		p.W.Data[i] = (2*r.Float64() - 1) * limit
	}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Adam is the Adam optimizer (Kingma & Ba), the weight-update rule of
// Algorithm 1 line 13.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64
	t       int
}

// NewAdam returns an Adam optimizer with the usual defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step applies one Adam update to every parameter from its Grad.
func (a *Adam) Step(params []*Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		if p.m == nil {
			p.m = mat.New(p.W.Rows, p.W.Cols)
			p.v = mat.New(p.W.Rows, p.W.Cols)
		}
		for i, g := range p.Grad.Data {
			p.m.Data[i] = a.Beta1*p.m.Data[i] + (1-a.Beta1)*g
			p.v.Data[i] = a.Beta2*p.v.Data[i] + (1-a.Beta2)*g*g
			mhat := p.m.Data[i] / c1
			vhat := p.v.Data[i] / c2
			p.W.Data[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Epsilon)
		}
	}
}

// Steps returns the number of updates applied so far.
func (a *Adam) Steps() int { return a.t }

// GCNLayer implements one graph-convolution layer:
//
//	H_neigh = MeanAgg(H)                 (feature propagation)
//	Z       = [ H·W_self | H_neigh·W_neigh ]   (weight application + concat)
//	out     = ReLU(Z)                     (optional activation)
//
// Output width is 2*OutDim because of the concatenation.
type GCNLayer struct {
	InDim, OutDim int
	WSelf, WNeigh *Param
	// Activate disables the ReLU when false (the classifier head
	// prefers raw features from the last layer in some stacks).
	Activate bool
	// Agg selects the neighbor aggregation operator (default mean,
	// the paper's choice).
	Agg Aggregator

	// Cached activations from the last Forward, consumed by Backward.
	lastH, lastHNeigh, lastZ *mat.Dense
	lastMask                 []float64

	// Persistent scratch reused across steps so the hot path does not
	// pay an allocation per kernel call (matrices returned to callers
	// are still freshly allocated — only layer-internal intermediates
	// recycle their backing arrays). Every kernel writing into these
	// fully overwrites its destination, so reuse never changes the
	// arithmetic and the determinism contract holds.
	bufDrop, bufZSelf, bufZNeigh *mat.Dense
	bufDZ, bufDZSelf, bufDZNeigh *mat.Dense
	bufDW, bufDHNeigh, bufBack   *mat.Dense
	bufMask                      []float64
}

// NewGCNLayer constructs a layer with Glorot-initialized weights.
func NewGCNLayer(in, out int, r *rng.RNG) *GCNLayer {
	l := &GCNLayer{
		InDim: in, OutDim: out,
		WSelf:    NewParam("w_self", in, out),
		WNeigh:   NewParam("w_neigh", in, out),
		Activate: true,
	}
	l.WSelf.GlorotInit(r)
	l.WNeigh.GlorotInit(r)
	return l
}

// Params returns the trainable parameters of the layer.
func (l *GCNLayer) Params() []*Param { return []*Param{l.WSelf, l.WNeigh} }

// OutWidth is the post-concatenation feature width.
func (l *GCNLayer) OutWidth() int { return 2 * l.OutDim }

// Forward runs the layer over ctx.G and returns the n x 2*OutDim
// output, caching intermediates for Backward.
func (l *GCNLayer) Forward(ctx *Ctx, h *mat.Dense) *mat.Dense {
	n := h.Rows
	if n != ctx.G.N {
		panic("nn: feature rows do not match graph vertices")
	}
	l.lastMask = nil
	if ctx.Train && ctx.DropRate > 0 {
		if ctx.Rng == nil {
			panic("nn: dropout requires Ctx.Rng")
		}
		l.bufDrop = mat.Reuse(l.bufDrop, n, h.Cols)
		l.bufDrop.CopyFrom(h)
		h = l.bufDrop
		l.lastMask = dropoutInPlace(h, ctx.DropRate, ctx.Rng, l.bufMask)
		l.bufMask = l.lastMask
	}
	hNeigh := mat.Reuse(l.lastHNeigh, n, l.InDim)
	ctx.time("featprop", func() {
		aggregate(hNeigh, h, ctx.G, l.Agg, ctx.Q, ctx.Workers)
	})
	zSelf := mat.Reuse(l.bufZSelf, n, l.OutDim)
	zNeigh := mat.Reuse(l.bufZNeigh, n, l.OutDim)
	l.bufZSelf, l.bufZNeigh = zSelf, zNeigh
	ctx.time("weight", func() {
		mat.Mul(zSelf, h, l.WSelf.W, ctx.Workers)
		mat.Mul(zNeigh, hNeigh, l.WNeigh.W, ctx.Workers)
	})
	z := mat.Reuse(l.lastZ, n, 2*l.OutDim)
	mat.ConcatColsP(z, zSelf, zNeigh, ctx.Workers)
	l.lastH, l.lastHNeigh, l.lastZ = h, hNeigh, z
	if !l.Activate {
		return z.Clone()
	}
	out := mat.New(n, 2*l.OutDim)
	mat.ApplyP(out, z, relu, ctx.Workers)
	return out
}

// Backward consumes dOut (gradient w.r.t. the layer output),
// accumulates parameter gradients, and returns the gradient w.r.t.
// the layer input.
func (l *GCNLayer) Backward(ctx *Ctx, dOut *mat.Dense) *mat.Dense {
	if l.lastZ == nil {
		panic("nn: Backward called before Forward")
	}
	n := dOut.Rows
	dZ := mat.Reuse(l.bufDZ, n, 2*l.OutDim)
	l.bufDZ = dZ
	if l.Activate {
		// ReLU gate, sharded by elements (each owned by one worker).
		perf.ParallelMin(len(l.lastZ.Data), 4096, ctx.Workers, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				if l.lastZ.Data[i] > 0 {
					dZ.Data[i] = dOut.Data[i]
				} else {
					dZ.Data[i] = 0
				}
			}
		})
	} else {
		dZ.CopyFrom(dOut)
	}
	dZSelf := mat.Reuse(l.bufDZSelf, n, l.OutDim)
	dZNeigh := mat.Reuse(l.bufDZNeigh, n, l.OutDim)
	l.bufDZSelf, l.bufDZNeigh = dZSelf, dZNeigh
	mat.SplitColsP(dZSelf, dZNeigh, dZ, ctx.Workers)

	ctx.time("weight", func() {
		// dW_self += Hᵀ·dZ_self ; dW_neigh += H_neighᵀ·dZ_neigh.
		dw := mat.Reuse(l.bufDW, l.InDim, l.OutDim)
		l.bufDW = dw
		mat.MulAT(dw, l.lastH, dZSelf, ctx.Workers)
		mat.AddScaled(l.WSelf.Grad, dw, 1)
		mat.MulAT(dw, l.lastHNeigh, dZNeigh, ctx.Workers)
		mat.AddScaled(l.WNeigh.Grad, dw, 1)
	})

	// dH = dZ_self·W_selfᵀ + MeanAggᵀ(dZ_neigh·W_neighᵀ). dH is
	// returned to the caller, so it stays freshly allocated.
	dH := mat.New(n, l.InDim)
	dHNeigh := mat.Reuse(l.bufDHNeigh, n, l.InDim)
	l.bufDHNeigh = dHNeigh
	ctx.time("weight", func() {
		mat.MulBT(dH, dZSelf, l.WSelf.W, ctx.Workers)
		mat.MulBT(dHNeigh, dZNeigh, l.WNeigh.W, ctx.Workers)
	})
	back := mat.Reuse(l.bufBack, n, l.InDim)
	l.bufBack = back
	ctx.time("featprop", func() {
		aggregateT(back, dHNeigh, ctx.G, l.Agg, ctx.Q, ctx.Workers)
	})
	mat.AddScaledP(dH, back, 1, ctx.Workers)
	if l.lastMask != nil {
		for i, m := range l.lastMask {
			dH.Data[i] *= m
		}
	}
	return dH
}

// dropoutInPlace zeroes each element with probability rate and scales
// survivors by 1/(1-rate) (inverted dropout), returning the applied
// multiplier per element for the backward pass. buf, when large
// enough, provides the mask storage (every entry is overwritten).
func dropoutInPlace(h *mat.Dense, rate float64, r *rng.RNG, buf []float64) []float64 {
	keep := 1 - rate
	inv := 1 / keep
	mask := buf
	if cap(mask) < len(h.Data) {
		mask = make([]float64, len(h.Data))
	} else {
		mask = mask[:len(h.Data)]
	}
	for i := range h.Data {
		if r.Float64() < keep {
			mask[i] = inv
			h.Data[i] *= inv
		} else {
			mask[i] = 0
			h.Data[i] = 0
		}
	}
	return mask
}

// Dense is a fully connected classification head:
// logits = H·W + b (broadcast).
type Dense struct {
	InDim, OutDim int
	W, B          *Param
	lastH         *mat.Dense
	bufDW         *mat.Dense // reused dW scratch (see GCNLayer buffers)
}

// NewDense constructs a Glorot-initialized dense layer.
func NewDense(in, out int, r *rng.RNG) *Dense {
	d := &Dense{
		InDim: in, OutDim: out,
		W: NewParam("w_out", in, out),
		B: NewParam("b_out", 1, out),
	}
	d.W.GlorotInit(r)
	return d
}

// Params returns the trainable parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// Forward returns logits = h·W + b.
func (d *Dense) Forward(ctx *Ctx, h *mat.Dense) *mat.Dense {
	out := mat.New(h.Rows, d.OutDim)
	ctx.time("weight", func() {
		mat.Mul(out, h, d.W.W, ctx.Workers)
	})
	perf.ParallelMin(out.Rows, 64, ctx.Workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			row := out.Row(i)
			for j := range row {
				row[j] += d.B.W.Data[j]
			}
		}
	})
	d.lastH = h
	return out
}

// Backward accumulates dW, dB and returns dH.
func (d *Dense) Backward(ctx *Ctx, dOut *mat.Dense) *mat.Dense {
	dH := mat.New(dOut.Rows, d.InDim)
	ctx.time("weight", func() {
		dw := mat.Reuse(d.bufDW, d.InDim, d.OutDim)
		d.bufDW = dw
		mat.MulAT(dw, d.lastH, dOut, ctx.Workers)
		mat.AddScaled(d.W.Grad, dw, 1)
		mat.MulBT(dH, dOut, d.W.W, ctx.Workers)
	})
	for i := 0; i < dOut.Rows; i++ {
		row := dOut.Row(i)
		for j := range row {
			d.B.Grad.Data[j] += row[j]
		}
	}
	return dH
}

func relu(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}
