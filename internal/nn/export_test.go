package nn

import "gsgcn/internal/perf"

// newTimer re-exports perf.NewTimer for tests without an extra import
// at every call site.
func newTimer() *perf.Timer { return perf.NewTimer() }
