package nn

// Bit-exactness suite for the parallel nn kernels (ISSUE 1): forward
// aggregation, full layer forward/backward and the dense head must
// produce element-identical outputs and gradients at every Workers
// (and feature-partition Q) setting. Run with -race to exercise the
// sharded paths under the race detector.

import (
	"testing"

	"gsgcn/internal/mat"
	"gsgcn/internal/rng"
)

func requireSame(t *testing.T, tag string, got, want *mat.Dense) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape mismatch", tag)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d differs: %v != %v", tag, i, got.Data[i], want.Data[i])
		}
	}
}

func TestAggregateBitExactAcrossWorkersAndQ(t *testing.T) {
	const n, f = 23, 13 // prime-ish odd sizes
	ctx := testCtx(t, n)
	src := randMat(rng.New(3), n, f)
	for _, agg := range []Aggregator{AggMean, AggSym, AggSum} {
		want := mat.New(n, f)
		aggregate(want, src, ctx.G, agg, 1, 1)
		for _, q := range []int{1, 2, 5, f, f + 10} {
			for _, w := range []int{1, 2, 8} {
				got := mat.New(n, f)
				aggregate(got, src, ctx.G, agg, q, w)
				requireSame(t, agg.String(), got, want)
				gotT := mat.New(n, f)
				aggregateT(gotT, src, ctx.G, agg, q, w)
				wantT := mat.New(n, f)
				aggregateT(wantT, src, ctx.G, agg, 1, 1)
				requireSame(t, agg.String()+"/T", gotT, wantT)
			}
		}
	}
}

// layerPass runs one forward+backward through a freshly initialized
// layer and head at the given worker count and returns everything a
// training step derives from the kernels: output, input gradient and
// parameter gradients.
func layerPass(t *testing.T, workers int) []*mat.Dense {
	t.Helper()
	const n, in, out = 21, 9, 5
	ctx := testCtx(t, n)
	ctx.Workers = workers
	ctx.Q = 3
	r := rng.New(77)
	layer := NewGCNLayer(in, out, r)
	head := NewDense(layer.OutWidth(), 4, r)
	h := randMat(rng.New(5), n, in)

	z := layer.Forward(ctx, h)
	logits := head.Forward(ctx, z)
	dLogits := randMat(rng.New(7), n, 4)
	dZ := head.Backward(ctx, dLogits)
	dH := layer.Backward(ctx, dZ)

	results := []*mat.Dense{z, logits, dZ, dH}
	for _, p := range append(layer.Params(), head.Params()...) {
		results = append(results, p.Grad)
	}
	return results
}

func TestLayerForwardBackwardBitExactAcrossWorkers(t *testing.T) {
	want := layerPass(t, 1)
	for _, workers := range []int{2, 8} {
		got := layerPass(t, workers)
		for i := range want {
			requireSame(t, "pass output", got[i], want[i])
		}
	}
}
