package nn

import (
	"math"

	"gsgcn/internal/graph"
	"gsgcn/internal/mat"
	"gsgcn/internal/partition"
	"gsgcn/internal/perf"
)

// Aggregator selects how a GCN layer pools neighbor features. The
// paper trains with the mean aggregator (Section II-A); the symmetric
// and sum variants are the standard Kipf-Welling and GIN-style
// alternatives used by the sampler-ablation experiments.
type Aggregator int

const (
	// AggMean averages neighbor features: D⁻¹·A (the paper's choice).
	AggMean Aggregator = iota
	// AggSym is the symmetric normalization D^{-1/2}·A·D^{-1/2} of
	// Kipf & Welling. It is self-adjoint, so forward and backward use
	// the same operator.
	AggSym
	// AggSum is the unnormalized adjacency A.
	AggSum
)

// String names the aggregator.
func (a Aggregator) String() string {
	switch a {
	case AggMean:
		return "mean"
	case AggSym:
		return "sym"
	case AggSum:
		return "sum"
	}
	return "unknown"
}

// aggregate applies the forward aggregation operator over g.
func aggregate(dst, src *mat.Dense, g *graph.CSR, agg Aggregator, q, workers int) {
	switch agg {
	case AggMean:
		partition.Propagate(dst, src, g, partition.NormDst, q, workers)
	case AggSym:
		symPropagate(dst, src, g, q, workers)
	case AggSum:
		sumPropagate(dst, src, g, q, workers)
	}
}

// aggregateT applies the transpose (backward) operator.
func aggregateT(dst, src *mat.Dense, g *graph.CSR, agg Aggregator, q, workers int) {
	switch agg {
	case AggMean:
		partition.Propagate(dst, src, g, partition.NormSrc, q, workers)
	case AggSym:
		// Symmetric normalization is self-adjoint.
		symPropagate(dst, src, g, q, workers)
	case AggSum:
		// A is symmetric for undirected graphs.
		sumPropagate(dst, src, g, q, workers)
	}
}

// symPropagate computes dst[v] = Σ_u src[u] / sqrt(deg(v)·deg(u)),
// feature-partitioned like partition.Propagate.
func symPropagate(dst, src *mat.Dense, g *graph.CSR, q, workers int) {
	f := src.Cols
	if q < 1 {
		q = 1
	}
	if q > f {
		q = f
	}
	invSqrt := make([]float64, g.N)
	for v := 0; v < g.N; v++ {
		if d := g.Degree(int32(v)); d > 0 {
			invSqrt[v] = 1 / math.Sqrt(float64(d))
		}
	}
	forEachChunk(f, q, workers, func(lo, hi int) {
		for v := 0; v < g.N; v++ {
			drow := dst.Data[v*f+lo : v*f+hi]
			for j := range drow {
				drow[j] = 0
			}
			nb := g.Neighbors(int32(v))
			if len(nb) == 0 {
				continue
			}
			for _, u := range nb {
				w := invSqrt[v] * invSqrt[u]
				srow := src.Data[int(u)*f+lo : int(u)*f+hi]
				for j, x := range srow {
					drow[j] += w * x
				}
			}
		}
	})
}

// sumPropagate computes dst[v] = Σ_u src[u].
func sumPropagate(dst, src *mat.Dense, g *graph.CSR, q, workers int) {
	f := src.Cols
	if q < 1 {
		q = 1
	}
	if q > f {
		q = f
	}
	forEachChunk(f, q, workers, func(lo, hi int) {
		for v := 0; v < g.N; v++ {
			drow := dst.Data[v*f+lo : v*f+hi]
			for j := range drow {
				drow[j] = 0
			}
			for _, u := range g.Neighbors(int32(v)) {
				srow := src.Data[int(u)*f+lo : int(u)*f+hi]
				for j, x := range srow {
					drow[j] += x
				}
			}
		}
	})
}

// forEachChunk runs fn over q feature chunks with `workers` real
// goroutines, mirroring Algorithm 6's schedule.
func forEachChunk(f, q, workers int, fn func(lo, hi int)) {
	perfParallel(q, workers, func(qlo, qhi int) {
		for i := qlo; i < qhi; i++ {
			lo := i * f / q
			hi := (i + 1) * f / q
			if lo < hi {
				fn(lo, hi)
			}
		}
	})
}

// perfParallel adapts perf.Parallel's signature for chunk loops.
func perfParallel(n, workers int, fn func(lo, hi int)) {
	perf.Parallel(n, workers, func(_, lo, hi int) { fn(lo, hi) })
}
