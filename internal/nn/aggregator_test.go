package nn

import (
	"math"
	"testing"

	"gsgcn/internal/graph"
	"gsgcn/internal/mat"
	"gsgcn/internal/rng"
)

func TestAggregatorNames(t *testing.T) {
	if AggMean.String() != "mean" || AggSym.String() != "sym" || AggSum.String() != "sum" {
		t.Error("aggregator names wrong")
	}
	if Aggregator(99).String() != "unknown" {
		t.Error("unknown aggregator name")
	}
}

func TestAggSumSemantics(t *testing.T) {
	// Path 0-1-2: vertex 1 sums both neighbors.
	g, err := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	src := mat.FromData(3, 1, []float64{1, 10, 100})
	dst := mat.New(3, 1)
	aggregate(dst, src, g, AggSum, 1, 1)
	want := []float64{10, 101, 10}
	for i, w := range want {
		if dst.Data[i] != w {
			t.Fatalf("AggSum = %v, want %v", dst.Data, want)
		}
	}
}

func TestAggSymSemantics(t *testing.T) {
	// Path 0-1-2: deg = 1,2,1.
	g, err := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	src := mat.FromData(3, 1, []float64{1, 1, 1})
	dst := mat.New(3, 1)
	aggregate(dst, src, g, AggSym, 1, 1)
	s2 := 1 / math.Sqrt(2)
	want := []float64{s2, 2 * s2, s2}
	for i, w := range want {
		if math.Abs(dst.Data[i]-w) > 1e-12 {
			t.Fatalf("AggSym = %v, want %v", dst.Data, want)
		}
	}
}

func TestAggSymSelfAdjoint(t *testing.T) {
	ctx := testCtx(t, 14)
	r := rng.New(31)
	x := randMat(r, 14, 3)
	y := randMat(r, 14, 3)
	ax := mat.New(14, 3)
	ay := mat.New(14, 3)
	aggregate(ax, x, ctx.G, AggSym, 2, 1)
	aggregateT(ay, y, ctx.G, AggSym, 2, 1)
	var left, right float64
	for i := range ax.Data {
		left += y.Data[i] * ax.Data[i]
		right += ay.Data[i] * x.Data[i]
	}
	if math.Abs(left-right) > 1e-9*(1+math.Abs(left)) {
		t.Errorf("<y,Ax>=%v != <A'y,x>=%v", left, right)
	}
}

func TestGCNLayerGradientAllAggregators(t *testing.T) {
	const n, in, out = 9, 5, 3
	ctx := testCtx(t, n)
	r := rng.New(33)
	for _, agg := range []Aggregator{AggMean, AggSym, AggSum} {
		l := NewGCNLayer(in, out, r)
		l.Agg = agg
		l.Activate = false
		h := randMat(r, n, in)
		coeff := randMat(r, n, 2*out)
		eval := func() float64 { return objective(l.Forward(ctx, h), coeff) }
		eval()
		l.WSelf.ZeroGrad()
		l.WNeigh.ZeroGrad()
		dh := l.Backward(ctx, coeff)
		num := numericalGrad(h, eval)
		if d := dh.MaxAbsDiff(num); d > 1e-5 {
			t.Errorf("%s: dH max diff %g", agg, d)
		}
		numW := numericalGrad(l.WNeigh.W, eval)
		if d := l.WNeigh.Grad.MaxAbsDiff(numW); d > 1e-5 {
			t.Errorf("%s: dWneigh max diff %g", agg, d)
		}
	}
}

func TestDropoutMaskStatistics(t *testing.T) {
	r := rng.New(35)
	h := mat.New(100, 100)
	h.Fill(1)
	mask := dropoutInPlace(h, 0.3, r, nil)
	zeros := 0
	for i, v := range h.Data {
		switch v {
		case 0:
			zeros++
			if mask[i] != 0 {
				t.Fatal("mask nonzero for dropped element")
			}
		default:
			if math.Abs(v-1/0.7) > 1e-12 {
				t.Fatalf("survivor scaled to %v, want %v", v, 1/0.7)
			}
		}
	}
	frac := float64(zeros) / float64(len(h.Data))
	if math.Abs(frac-0.3) > 0.02 {
		t.Errorf("dropped fraction %.3f, want ~0.30", frac)
	}
	// Expectation preserved: mean of surviving scaled values ~ 1.
	sum := 0.0
	for _, v := range h.Data {
		sum += v
	}
	if mean := sum / float64(len(h.Data)); math.Abs(mean-1) > 0.03 {
		t.Errorf("dropout mean %v, want ~1 (inverted scaling)", mean)
	}
}

func TestDropoutOnlyInTraining(t *testing.T) {
	ctx := testCtx(t, 10)
	r := rng.New(37)
	l := NewGCNLayer(4, 3, r)
	h := randMat(r, 10, 4)
	// Inference context: DropRate set but Train false -> deterministic.
	ctx.DropRate = 0.5
	ctx.Rng = rng.New(1)
	a := l.Forward(ctx, h)
	b := l.Forward(ctx, h)
	if a.MaxAbsDiff(b) != 0 {
		t.Fatal("inference with Train=false is non-deterministic")
	}
	// Training context: outputs vary between calls.
	ctx.Train = true
	c := l.Forward(ctx, h)
	d := l.Forward(ctx, h)
	if c.MaxAbsDiff(d) == 0 {
		t.Fatal("dropout produced identical outputs on consecutive calls")
	}
	// Original features untouched (layer clones before masking).
	a2 := h.Clone()
	if h.MaxAbsDiff(a2) != 0 {
		t.Fatal("dropout mutated the caller's feature matrix")
	}
}

func TestDropoutBackwardAppliesMask(t *testing.T) {
	// With an extreme rate, most input gradients must be exactly zero
	// (masked), and the surviving ones scaled.
	ctx := testCtx(t, 10)
	r := rng.New(39)
	l := NewGCNLayer(4, 3, r)
	l.Activate = false
	ctx.Train = true
	ctx.DropRate = 0.9
	ctx.Rng = rng.New(2)
	h := randMat(r, 10, 4)
	l.Forward(ctx, h)
	dh := l.Backward(ctx, randMat(r, 10, 6))
	zeros := 0
	for _, v := range dh.Data {
		if v == 0 {
			zeros++
		}
	}
	if float64(zeros)/float64(len(dh.Data)) < 0.5 {
		t.Errorf("only %d/%d input grads masked at rate 0.9", zeros, len(dh.Data))
	}
}

func TestDropoutRequiresRng(t *testing.T) {
	ctx := testCtx(t, 6)
	ctx.Train = true
	ctx.DropRate = 0.5
	r := rng.New(41)
	l := NewGCNLayer(3, 2, r)
	defer func() {
		if recover() == nil {
			t.Fatal("dropout without Rng did not panic")
		}
	}()
	l.Forward(ctx, randMat(r, 6, 3))
}
